#include "shc/mlbg/spec.hpp"

#include <algorithm>
#include <cassert>

namespace shc {

std::size_t ConstructionLevel::max_owned() const {
  std::size_t best = 0;
  for (const auto& s : owned_dims) best = std::max(best, s.size());
  return best;
}

std::size_t ConstructionLevel::min_owned() const {
  std::size_t best = owned_dims.empty() ? 0 : owned_dims.front().size();
  for (const auto& s : owned_dims) best = std::min(best, s.size());
  return best;
}

std::vector<std::vector<Dim>> partition_dims(int lo, int hi, Label classes) {
  assert(lo <= hi && classes >= 1);
  const int count = hi - lo;
  const int base = count / static_cast<int>(classes);
  const int extra = count % static_cast<int>(classes);
  std::vector<std::vector<Dim>> out(classes);
  Dim next = lo + 1;
  for (Label j = 0; j < classes; ++j) {
    const int size = base + (static_cast<int>(j) < extra ? 1 : 0);
    out[j].reserve(static_cast<std::size_t>(size));
    for (int t = 0; t < size; ++t) out[j].push_back(next++);
  }
  assert(next == hi + 1);
  return out;
}

SparseHypercubeSpec::SparseHypercubeSpec(int n, std::vector<int> cuts,
                                         std::vector<ConstructionLevel> levels)
    : n_(n), cuts_(std::move(cuts)), levels_(std::move(levels)) {}

SparseHypercubeSpec SparseHypercubeSpec::construct_base(int n, int m,
                                                        CubeLabeling labeling) {
  return construct(n, {m}, {std::move(labeling)});
}

SparseHypercubeSpec SparseHypercubeSpec::construct_base(int n, int m) {
  return construct_base(n, m, lemma2_labeling(m));
}

SparseHypercubeSpec SparseHypercubeSpec::construct(int n, std::vector<int> cuts) {
  std::vector<CubeLabeling> labelings;
  labelings.reserve(cuts.size());
  int prev = 0;
  for (int c : cuts) {
    labelings.push_back(lemma2_labeling(c - prev));
    prev = c;
  }
  return construct(n, std::move(cuts), std::move(labelings));
}

SparseHypercubeSpec SparseHypercubeSpec::construct(int n, std::vector<int> cuts,
                                                   std::vector<CubeLabeling> labelings) {
  assert(n >= 2 && n <= kMaxCubeDim);
  assert(!cuts.empty() && cuts.size() == labelings.size());
  assert(std::is_sorted(cuts.begin(), cuts.end()));
  assert(cuts.front() >= 1 && cuts.back() < n);
#ifndef NDEBUG
  for (std::size_t t = 0; t + 1 < cuts.size(); ++t) assert(cuts[t] < cuts[t + 1]);
#endif

  std::vector<ConstructionLevel> levels;
  levels.reserve(cuts.size());
  int prev = 0;
  for (std::size_t t = 0; t < cuts.size(); ++t) {
    const int win_lo = prev;
    const int win_hi = cuts[t];
    const int dim_lo = cuts[t];
    const int dim_hi = (t + 1 < cuts.size()) ? cuts[t + 1] : n;
    assert(labelings[t].m() == win_hi - win_lo && "labeling must match window size");
    assert(labelings[t].satisfies_condition_a() &&
           "construction requires a Condition-A labeling");

    ConstructionLevel level{win_lo, win_hi, dim_lo, dim_hi, std::move(labelings[t]),
                            {}, {}};
    level.owned_dims = partition_dims(dim_lo, dim_hi, level.labeling.num_labels());
    level.dim_owner.assign(static_cast<std::size_t>(dim_hi - dim_lo), 0);
    for (Label j = 0; j < level.labeling.num_labels(); ++j) {
      for (Dim d : level.owned_dims[j]) {
        level.dim_owner[static_cast<std::size_t>(d - dim_lo - 1)] = j;
      }
    }
    levels.push_back(std::move(level));
    prev = cuts[t];
  }
  return SparseHypercubeSpec(n, std::move(cuts), std::move(levels));
}

int SparseHypercubeSpec::level_of_dim(Dim i) const noexcept {
  assert(i >= 1 && i <= n_);
  if (i <= cuts_.front()) return -1;
  // levels_[t] governs (cuts_[t], next]; linear scan is fine (k <= 8).
  for (std::size_t t = 0; t < levels_.size(); ++t) {
    if (i <= levels_[t].dim_hi) return static_cast<int>(t);
  }
  return static_cast<int>(levels_.size()) - 1;  // unreachable for valid i
}

Label SparseHypercubeSpec::label_at(Vertex u, int level) const noexcept {
  const ConstructionLevel& lv = levels_[static_cast<std::size_t>(level)];
  return lv.labeling.at(window_value(u, lv.win_lo, lv.win_hi));
}

bool SparseHypercubeSpec::has_edge_dim(Vertex u, Dim i) const noexcept {
  const int t = level_of_dim(i);
  if (t < 0) return true;  // Rule 1 core dimension
  const ConstructionLevel& lv = levels_[static_cast<std::size_t>(t)];
  return lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)] == label_at(u, t);
}

Vertex SparseHypercubeSpec::dim_support_mask(Dim i) const noexcept {
  const int t = level_of_dim(i);
  if (t < 0) return 0;  // core edges exist unconditionally
  const ConstructionLevel& lv = levels_[static_cast<std::size_t>(t)];
  return mask_window(lv.win_lo, lv.win_hi);
}

bool SparseHypercubeSpec::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices() || !cube_adjacent(u, v)) return false;
  return has_edge_dim(u, differing_dim(u, v));
}

std::size_t SparseHypercubeSpec::degree(Vertex u) const noexcept {
  std::size_t d = static_cast<std::size_t>(core_dim());
  for (std::size_t t = 0; t < levels_.size(); ++t) {
    d += levels_[t].owned_dims[label_at(u, static_cast<int>(t))].size();
  }
  return d;
}

std::size_t SparseHypercubeSpec::max_degree() const noexcept {
  // Label classes are all nonempty (Condition A), so some vertex attains
  // the largest S_j at every level simultaneously only if labels can be
  // chosen independently per level — they can, because windows are
  // disjoint bit ranges.
  std::size_t d = static_cast<std::size_t>(core_dim());
  for (const auto& lv : levels_) d += lv.max_owned();
  return d;
}

std::size_t SparseHypercubeSpec::min_degree() const noexcept {
  std::size_t d = static_cast<std::size_t>(core_dim());
  for (const auto& lv : levels_) d += lv.min_owned();
  return d;
}

std::uint64_t SparseHypercubeSpec::num_edges() const {
  // Sum of degrees = 2^n * core + sum over levels/labels of
  // (#vertices with that label) * |S_label|; vertices with label j at
  // level t number class_size(j) * 2^(n - window_size).
  std::uint64_t twice_edges = cube_order(n_) * static_cast<std::uint64_t>(core_dim());
  for (const auto& lv : levels_) {
    const auto sizes = lv.labeling.class_sizes();
    const int wsize = lv.win_hi - lv.win_lo;
    const std::uint64_t copies = cube_order(n_ - wsize);
    for (Label j = 0; j < lv.labeling.num_labels(); ++j) {
      twice_edges += copies * sizes[j] * lv.owned_dims[j].size();
    }
  }
  assert(twice_edges % 2 == 0);
  return twice_edges / 2;
}

Graph SparseHypercubeSpec::materialize() const {
  assert(n_ <= 26 && "materialization guarded; use the implicit oracle instead");
  GraphBuilder b(static_cast<VertexId>(num_vertices()));
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Dim i = 1; i <= n_; ++i) {
      const Vertex v = flip(u, i);
      if (u < v && has_edge_dim(u, i)) {
        b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
    }
  }
  return std::move(b).build();
}

std::vector<Vertex> SparseHypercubeSpec::neighbors(Vertex u) const {
  std::vector<Vertex> nb;
  nb.reserve(degree(u));
  for (Dim i = 1; i <= n_; ++i) {
    if (has_edge_dim(u, i)) nb.push_back(flip(u, i));
  }
  return nb;
}

}  // namespace shc
