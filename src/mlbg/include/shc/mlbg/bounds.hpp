// Closed-form degree bounds from the paper (Theorems 1, 2, 3, 5, 7 and
// Corollaries 1, 2).  All functions take n = log2 N and are exact
// integer computations (no floating point), so bench tables and tests
// can compare constructed degrees against them reliably.
#pragma once

#include <cstdint>

namespace shc {

/// Theorem 1: for k >= theorem1_k_threshold(N) there is a k-mlbg on N
/// vertices with maximum degree <= 3 (the Figure-1 tree family).
[[nodiscard]] int theorem1_k_threshold(std::uint64_t N) noexcept;

/// Theorems 2 and 3 combined: a lower bound on the maximum degree of any
/// k-mlbg with N = 2^n vertices.
///   k = 1:       Delta >= n (the source must call n distinct neighbors);
///   k = 2,3,4:   Delta >= ceil(n^(1/k))            (Theorem 2);
///   k >= 5:      smallest Delta >= 3 with 3((Delta-1)^k - 1) >= n
///                (Theorem 3's counting argument, solved exactly).
[[nodiscard]] int lower_bound_max_degree(int n, int k) noexcept;

/// The exact counting lower bound: the smallest Delta such that a ball
/// of radius k in a Delta-regular tree reaches >= n vertices beyond the
/// root, i.e. Delta * sum_{i=0}^{k-1} (Delta-1)^i >= n.  Slightly
/// sharper than the closed forms; used in bench tables for comparison.
[[nodiscard]] int counting_lower_bound(int n, int k) noexcept;

/// Theorem 5 (k = 2): there is a 2-mlbg of order 2^n with
/// Delta <= 2 * ceil(sqrt(2n + 4)) - 4.
[[nodiscard]] int theorem5_upper(int n) noexcept;

/// Theorem 7 (k >= 3): there is a k-mlbg of order 2^n with
/// Delta <= (2k - 1) * ceil(n^(1/k)) - k, for n > k.
/// For k = 2 this returns the abstract's unified form 3*ceil(sqrt(n))-2,
/// which Theorem 5 refines.
[[nodiscard]] int theorem7_upper(int n, int k) noexcept;

/// Corollary 1: for k >= ceil(log2 n) the construction gives
/// Delta <= 4 * ceil(log2 n) - 2 (= 4 ceil(log2 log2 N) - 2).
[[nodiscard]] int corollary1_upper(int n) noexcept;

/// Diameter bound from the paper's footnote 1: any k-mlbg of order 2^n
/// has diameter <= k * n.
[[nodiscard]] int diameter_upper(int n, int k) noexcept;

}  // namespace shc
