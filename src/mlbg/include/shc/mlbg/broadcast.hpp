// Minimum-time k-line broadcast schemes for sparse hypercubes
// (Scheme Broadcast_2, Theorem 4; Scheme Broadcast_k, Theorem 6).
//
// The implementation unifies the paper's recursive phases into a single
// dimension sweep: for i = n down to 1 every informed vertex w places
// one call realizing the dimension-i flip via route_flip().  Rounds
// 1 .. n-c_{k-1} are the paper's Phase 1 at the outermost level; the
// remaining rounds are the recursive Phase 2 calls, which at every
// recursion depth are themselves dimension sweeps — concatenating them
// yields exactly this loop.  Tests cross-check the unified scheme
// against a literal transcription of Broadcast_2 for k = 2 (and its
// legacy round-trip through the FlatSchedule conversion shim).
//
// Schedules are produced directly into the flat arena representation:
// one contiguous path pool, zero per-call heap allocations, memory
// proportional to the total path length.
#pragma once

#include "shc/mlbg/spec.hpp"
#include "shc/sim/flat_schedule.hpp"

namespace shc {

/// Path realizing the dimension-i flip from u (the paper's Remark 1 /
/// Phase-1 detour):
///   * the direct edge {u, flip(u, i)} when present (length 1);
///   * otherwise a recursive walk to a nearby vertex v whose label owns
///     dimension i (perturbing only dimensions below the owning window),
///     followed by the edge {v, flip(v, i)}.
/// The result starts at u, ends at flip(v, i) for some v that agrees
/// with u on all dimensions >= the owning window's top, and has length
/// <= level(i) + 2 <= k.
[[nodiscard]] std::vector<Vertex> route_flip(const SparseHypercubeSpec& spec, Vertex u,
                                             Dim i);

/// Appends the route_flip(spec, u, i) path to the call currently being
/// built in `out` (allocation-free once the arena is reserved).  The
/// caller seals the call with out.end_call().
void route_flip_append(const SparseHypercubeSpec& spec, Vertex u, Dim i,
                       FlatSchedule& out);

/// Worst-case route_flip length for dimension i in this spec
/// (= owning level index + 2; 1 for core dimensions).
[[nodiscard]] int route_length_bound(const SparseHypercubeSpec& spec, Dim i) noexcept;

/// The unified Broadcast_k scheme from `source`: n rounds, round t
/// sweeping dimension n - t + 1, informed set exactly doubling.  The
/// schedule is k-line feasible for k = spec.k() (validated in tests via
/// the simulator, never assumed).  Memory: 2^n - 1 flat calls, one
/// arena; pre: n <= 28.
[[nodiscard]] FlatSchedule make_broadcast_schedule(const SparseHypercubeSpec& spec,
                                                   Vertex source);

/// Literal transcription of the paper's Scheme Broadcast_2 (two explicit
/// phases).  Pre: spec.k() == 2.  Used by tests to certify that the
/// unified scheme equals the published one.
[[nodiscard]] FlatSchedule make_broadcast2_literal(const SparseHypercubeSpec& spec,
                                                   Vertex source);

}  // namespace shc
