// Minimum-time k-line broadcast schemes for sparse hypercubes
// (Scheme Broadcast_2, Theorem 4; Scheme Broadcast_k, Theorem 6).
//
// The implementation unifies the paper's recursive phases into a single
// dimension sweep: for i = n down to 1 every informed vertex w places
// one call realizing the dimension-i flip via route_flip().  Rounds
// 1 .. n-c_{k-1} are the paper's Phase 1 at the outermost level; the
// remaining rounds are the recursive Phase 2 calls, which at every
// recursion depth are themselves dimension sweeps — concatenating them
// yields exactly this loop.  Tests cross-check the unified scheme
// against a literal transcription of Broadcast_2 for k = 2 (and its
// legacy round-trip through the FlatSchedule conversion shim).
//
// Schedules are produced directly into the flat arena representation:
// one contiguous path pool, zero per-call heap allocations, memory
// proportional to the total path length.
#pragma once

#include <cassert>
#include <vector>

#include "shc/bits/checked.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/round_sink.hpp"
#include "shc/sim/validator.hpp"

namespace shc {

/// Path realizing the dimension-i flip from u (the paper's Remark 1 /
/// Phase-1 detour):
///   * the direct edge {u, flip(u, i)} when present (length 1);
///   * otherwise a recursive walk to a nearby vertex v whose label owns
///     dimension i (perturbing only dimensions below the owning window),
///     followed by the edge {v, flip(v, i)}.
/// The result starts at u, ends at flip(v, i) for some v that agrees
/// with u on all dimensions >= the owning window's top, and has length
/// <= level(i) + 2 <= k.
[[nodiscard]] std::vector<Vertex> route_flip(const SparseHypercubeSpec& spec, Vertex u,
                                             Dim i);

/// Worst-case route_flip length for dimension i in this spec
/// (= owning level index + 2; 1 for core dimensions).
[[nodiscard]] int route_length_bound(const SparseHypercubeSpec& spec, Dim i) noexcept;

/// Appends the route_flip(spec, u, i) path to the call currently being
/// built in `out` (allocation-free into a reserved arena; templated so
/// any RoundSink — the whole-arena FlatSchedule or a streaming
/// consumer — receives the path directly).  The caller seals the call
/// with out.end_call().
template <RoundSink Sink>
void route_flip_append(const SparseHypercubeSpec& spec, Vertex u, Dim i,
                       Sink& out) {
  assert(i >= 1 && i <= spec.n());
  if (spec.has_edge_dim(u, i)) {
    out.push_vertex(u);
    out.push_vertex(flip(u, i));
    return;
  }

  const int t = spec.level_of_dim(i);
  assert(t >= 0 && "core dimensions always have edges");
  const ConstructionLevel& lv = spec.levels()[static_cast<std::size_t>(t)];
  const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];

  const Vertex win = window_value(u, lv.win_lo, lv.win_hi);
  const Dim rel = lv.labeling.flip_towards(win, owner);
  assert(rel >= 1 && "flip_towards returned self although edge is absent");
  const Dim bridge = lv.win_lo + rel;

  route_flip_append(spec, u, bridge, out);
  const Vertex v = out.last_vertex();
  assert(spec.label_at(v, t) == owner);
  assert(spec.has_edge_dim(v, i));
  out.push_vertex(flip(v, i));
}

/// The unified Broadcast_k dimension sweep as a streaming producer:
/// emits the n rounds one at a time into any RoundSink.  Only the
/// frontier (informed-vertex list) is held by the producer; whether the
/// schedule is materialized is the sink's choice, which is what lifts
/// the certified range to n <= 32 — memory is the frontier plus the
/// sink's largest-round buffer, never 2^n - 1 calls at once.
///
/// Optional sink hooks (detected statically): reserve_round(calls,
/// path_vertices) is called with exact per-round counts before each
/// begin_round(); aborted() stops the sweep early (e.g. when a
/// validating sink has already failed).  Pre: spec.n() <= 32.
template <RoundSink Sink>
void emit_broadcast_rounds(const SparseHypercubeSpec& spec, Vertex source,
                           Sink& sink) {
  assert(spec.n() <= 32 && "producer holds the 2^n-vertex frontier in memory");
  assert(source < spec.num_vertices());
  const int n = spec.n();

  std::vector<Vertex> informed;
  informed.reserve(spec.num_vertices());
  informed.push_back(source);
  for (Dim i = n; i >= 1; --i) {
    if constexpr (requires(const Sink& s) {
                    { s.aborted() } -> std::convertible_to<bool>;
                  }) {
      if (sink.aborted()) return;
    }
    const std::size_t frontier = informed.size();
    if constexpr (requires(Sink& s) {
                    s.reserve_round(std::size_t{}, std::size_t{});
                  }) {
      // Overflow-audited: the frontier is bounded by 2^31 here (n <= 32),
      // but the reservation arithmetic must stay provably un-wrapped all
      // the way to the representation limit.
      std::uint64_t path_vertices = 0;
      const bool fits = checked_mul_u64(
          frontier, static_cast<std::uint64_t>(route_length_bound(spec, i) + 1),
          path_vertices);
      assert(fits);
      if (fits) {
        sink.reserve_round(frontier, static_cast<std::size_t>(path_vertices));
      }
    }
    sink.begin_round();
    for (std::size_t w = 0; w < frontier; ++w) {
      route_flip_append(spec, informed[w], i, sink);
      informed.push_back(sink.last_vertex());
      sink.end_call();
    }
    sink.end_round();
  }
}

/// The unified Broadcast_k scheme from `source`: n rounds, round t
/// sweeping dimension n - t + 1, informed set exactly doubling.  The
/// schedule is k-line feasible for k = spec.k() (validated in tests via
/// the simulator, never assumed).  Memory: 2^n - 1 flat calls, one
/// arena; pre: n <= 28 (use certify_broadcast_streaming beyond).
[[nodiscard]] FlatSchedule make_broadcast_schedule(const SparseHypercubeSpec& spec,
                                                   Vertex source);

/// Outcome of a streamed production + validation run.
struct StreamingCertification {
  ValidationReport report;  ///< identical to the serial validator's verdict

  /// Observed high-water mark of the consumer's round buffer.
  std::size_t peak_round_arena_bytes = 0;

  /// A-priori bound: the arena footprint of the largest single round.
  /// The pipeline guarantees peak_round_arena_bytes <= this.
  std::size_t largest_round_arena_bytes = 0;

  /// What materializing the whole schedule would have reserved — the
  /// denominator of the streaming memory claim.
  std::size_t whole_schedule_arena_bytes = 0;

  /// High-water mark of the validator's per-round edge table (0 when
  /// every round's edge-disjointness was implied by single-hop
  /// structure) — reported so the pipeline's full memory footprint is
  /// visible, not just the schedule arena.
  std::size_t peak_edge_table_bytes = 0;

  std::uint64_t calls = 0;           ///< calls streamed through the sink
  std::uint64_t path_vertices = 0;   ///< path vertices streamed
};

/// Runs Broadcast_k from `source` through the streaming pipeline:
/// emit_broadcast_rounds producing into a StreamingBroadcastValidator
/// over the implicit SpecView oracle, `threads` workers sharding each
/// round's checks.  No schedule is ever materialized; peak schedule
/// memory is the largest single round.  Pre: spec.n() <= 32.
[[nodiscard]] StreamingCertification certify_broadcast_streaming(
    const SparseHypercubeSpec& spec, Vertex source, const ValidationOptions& opt,
    int threads = 1);

/// Literal transcription of the paper's Scheme Broadcast_2 (two explicit
/// phases).  Pre: spec.k() == 2.  Used by tests to certify that the
/// unified scheme equals the published one.
[[nodiscard]] FlatSchedule make_broadcast2_literal(const SparseHypercubeSpec& spec,
                                                   Vertex source);

}  // namespace shc
