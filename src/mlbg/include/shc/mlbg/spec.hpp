// The sparse hypercube construction (Sections 3 and 4 of the paper).
//
// A SparseHypercubeSpec describes the graph produced by
// Construct(k, (n, n_{k-1}, ..., n_1)) — equivalently Construct_BASE(n, m)
// when k = 2 — via cut points 0 = c_0 < c_1 < ... < c_{k-1} < c_k = n and
// one *level* per recursion step:
//
//   level t (1-based, t = 1 .. k-1):
//     window  (c_{t-1}, c_t]  — the bits whose Condition-A label governs
//     dims    (c_t, c_{t+1}]  — the cross dimensions owned by the labels
//
// Edges (the union of the paper's Rule 1 / Rule 2 applied recursively):
//   dim i <= c_1:                       always present (full Q_{c_1} cores);
//   dim i in (c_t, c_{t+1}]:            present at u iff the level-t label
//                                       of u's window owns dimension i.
//
// The per-dimension membership depends only on bits strictly below i, so
// both endpoints of a candidate edge agree, adjacency is O(1), and no
// materialization is needed (n <= 63).  materialize() produces the CSR
// graph for analysis when n is small.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "shc/bits/vertex.hpp"
#include "shc/graph/graph.hpp"
#include "shc/labeling/labeling.hpp"
#include "shc/sim/network.hpp"

namespace shc {

/// One recursion level of the construction.
struct ConstructionLevel {
  int win_lo = 0;  ///< window is (win_lo, win_hi]
  int win_hi = 0;
  int dim_lo = 0;  ///< governed dims are (dim_lo, dim_hi]; dim_lo == win_hi
  int dim_hi = 0;
  CubeLabeling labeling;           ///< Condition-A labeling of Q_{win_hi-win_lo}
  std::vector<Label> dim_owner;    ///< owner label of dim (dim_lo + 1 + idx)
  std::vector<std::vector<Dim>> owned_dims;  ///< S_j: dims owned by label j

  /// Size of the largest S_j — each vertex contributes exactly
  /// |S_{label(u)}| cross edges at this level.
  [[nodiscard]] std::size_t max_owned() const;
  [[nodiscard]] std::size_t min_owned() const;
};

/// Immutable description of one sparse hypercube G.
class SparseHypercubeSpec {
 public:
  /// The paper's Construct_BASE(n, m): k = 2, one level with window
  /// (0, m] and dims (m, n].  `labeling` must be a Condition-A labeling
  /// of Q_m; pass the result of lemma2_labeling(m) for the default
  /// construction, or a pinned labeling (e.g. example1_labeling_m2) to
  /// reproduce the paper's figures exactly.  Pre: 1 <= m < n <= 63.
  [[nodiscard]] static SparseHypercubeSpec construct_base(int n, int m,
                                                          CubeLabeling labeling);

  /// construct_base with the Lemma-2 labeling.
  [[nodiscard]] static SparseHypercubeSpec construct_base(int n, int m);

  /// The paper's Construct(k, (n, cuts_{k-1}, ..., cuts_1)) with the
  /// Lemma-2 labeling on every level.  `cuts` = (n_1, ..., n_{k-1})
  /// strictly increasing, 1 <= n_1, n_{k-1} < n.  k = cuts.size() + 1.
  [[nodiscard]] static SparseHypercubeSpec construct(int n, std::vector<int> cuts);

  /// Fully custom: one labeling per level, levels.size() == cuts.size();
  /// labeling t must cover Q_{cuts[t] - cuts[t-1]}.
  [[nodiscard]] static SparseHypercubeSpec construct(int n, std::vector<int> cuts,
                                                     std::vector<CubeLabeling> labelings);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return static_cast<int>(levels_.size()) + 1; }
  [[nodiscard]] std::uint64_t num_vertices() const noexcept { return cube_order(n_); }

  /// First cut c_1 (the paper's m / n_1): dims 1..core_dim() are full.
  [[nodiscard]] int core_dim() const noexcept { return cuts_.front(); }
  [[nodiscard]] const std::vector<int>& cuts() const noexcept { return cuts_; }
  [[nodiscard]] const std::vector<ConstructionLevel>& levels() const noexcept {
    return levels_;
  }

  /// True iff the i-dimensional edge {u, flip(u, i)} is present.
  [[nodiscard]] bool has_edge_dim(Vertex u, Dim i) const noexcept;

  /// Bit mask of the coordinates the dim-i edge predicate reads: empty
  /// for core dimensions (Rule 1, always present), the governing
  /// level's window for cross dimensions.  The symbolic engine's
  /// support discipline rests on this: a subcube whose free dims avoid
  /// the mask has one uniform has_edge_dim verdict for dimension i.
  [[nodiscard]] Vertex dim_support_mask(Dim i) const noexcept;

  /// True iff {u, v} is an edge (cube-adjacent and surviving deletion).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Index (0-based) of the level governing dim i, or -1 for core dims.
  [[nodiscard]] int level_of_dim(Dim i) const noexcept;

  /// Level-t label of vertex u (t 0-based).
  [[nodiscard]] Label label_at(Vertex u, int level) const noexcept;

  /// Exact vertex degree: core_dim() + sum over levels of |S_{label}|.
  [[nodiscard]] std::size_t degree(Vertex u) const noexcept;

  /// Exact maximum degree over all vertices (closed form, no scan).
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Exact minimum degree (closed form).
  [[nodiscard]] std::size_t min_degree() const noexcept;

  /// Exact edge count (closed form over label-class sizes).
  [[nodiscard]] std::uint64_t num_edges() const;

  /// Materializes the CSR graph.  Pre: n <= 26.
  [[nodiscard]] Graph materialize() const;

  /// Neighbor list of `u` (present dimensions), ascending by dimension.
  [[nodiscard]] std::vector<Vertex> neighbors(Vertex u) const;

 private:
  SparseHypercubeSpec(int n, std::vector<int> cuts, std::vector<ConstructionLevel> levels);

  int n_;
  std::vector<int> cuts_;                  // c_1 .. c_{k-1}
  std::vector<ConstructionLevel> levels_;  // level t at index t-1
};

/// First-class implicit adjacency oracle over a SparseHypercubeSpec —
/// the non-virtual counterpart of SparseHypercubeView.  Satisfies the
/// simulator's AdjacencyOracle concept, so templated validator and
/// congestion kernels probe edges through direct inlinable calls and
/// large-n schedules validate without materializing the graph.  It also
/// satisfies the symbolic engine's SymbolicOracle concept: dimension-
/// indexed adjacency plus per-dimension support masks.
class SpecView {
 public:
  /// Keeps a reference; the spec must outlive the view.
  explicit SpecView(const SparseHypercubeSpec& spec) : spec_(&spec) {}

  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return spec_->num_vertices();
  }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept {
    return spec_->has_edge(u, v);
  }
  [[nodiscard]] int cube_dim() const noexcept { return spec_->n(); }
  [[nodiscard]] bool has_edge_dim(Vertex u, Dim i) const noexcept {
    return spec_->has_edge_dim(u, i);
  }
  [[nodiscard]] Vertex dim_support_mask(Dim i) const noexcept {
    return spec_->dim_support_mask(i);
  }
  [[nodiscard]] const SparseHypercubeSpec& spec() const noexcept { return *spec_; }

 private:
  const SparseHypercubeSpec* spec_;
};

/// Type-erased NetworkView adapter over a spec, for code that needs the
/// virtual base (ad-hoc test oracles, heterogeneous view collections).
/// Hot paths should prefer SpecView + the templated kernels.
class SparseHypercubeView final : public NetworkView {
 public:
  /// Keeps a reference; the spec must outlive the view.
  explicit SparseHypercubeView(const SparseHypercubeSpec& spec) : spec_(spec) {}

  [[nodiscard]] std::uint64_t num_vertices() const override {
    return spec_.num_vertices();
  }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    return spec_.has_edge(u, v);
  }

 private:
  const SparseHypercubeSpec& spec_;
};

/// Partitions the dimension range (lo, hi] into `classes` subsets with
/// sizes differing by at most one (the paper's Step 2), assigning
/// ascending dimensions to ascending class indices.  Some classes may be
/// empty when hi - lo < classes.
[[nodiscard]] std::vector<std::vector<Dim>> partition_dims(int lo, int hi,
                                                           Label classes);

}  // namespace shc
