// Symbolic Broadcast_k production — the paper's construction emitted as
// subcube-batched call groups instead of concrete calls.
//
// The dimension sweep's informed set is represented as a SubcubeFrontier
// (disjoint (prefix, free-mask) subcubes with multiplicity).  In the
// round sweeping dimension i (governed by level t), route_flip(u, i)
// reads only the bits of u in (0, c_t], so a frontier subcube whose free
// dims avoid that window yields ONE route pattern for all its vertices:
// the producer splits each subcube on its free low bits (empirically:
// almost never needed), computes the representative's route as
// cumulative XOR masks, and emits a CallGroup per piece.  Receivers are
// the translated subcubes, re-inserted with sibling coalescing — the
// frontier stays polynomial in n (roughly the product over label classes
// of |S_j| + 1) while representing up to 2^63 - 1 informed vertices.
//
// Memory and time are proportional to the number of groups, never to
// 2^n: this is what closes the ROADMAP's n <= 63 gap left by the
// streaming pipeline's explicit 2^n-vertex frontier.
//
// The emitted splits are *ledger-friendly* by construction: a round
// sweeping a dimension governed by level t splits every frontier
// subcube on its free bits inside the governing window (0, c_t], so
// every multi-hop group of the round pins the whole window.  Those
// pinned-everywhere-but-varying window bits are exactly what the
// occupancy ledger (sim/occupancy_ledger.hpp) buckets on, which keeps
// the designed m = 10 cut's ~11 M-group rounds at a few thousand claims
// per bucket — the property that lets certify_broadcast_symbolic close
// the designed construct(63, 10) spec within default budgets.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "shc/bits/checked.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/symbolic_schedule.hpp"
#include "shc/sim/symbolic_validator.hpp"

namespace shc {

/// Producer-side statistics of one symbolic emission.
struct SymbolicProducerStats {
  std::uint64_t groups_emitted = 0;
  std::uint64_t peak_frontier_subcubes = 0;
  std::uint64_t final_frontier_subcubes = 0;
  std::uint64_t split_groups = 0;  ///< groups born from low-free-bit splits
};

namespace detail {

/// Minimal RoundSink that records a route_flip_append path as cumulative
/// XOR masks relative to the caller — the symbolic pattern format.
struct XorPathSink {
  Vertex base = 0;
  std::array<Vertex, 64> xs{};
  std::size_t len = 0;

  void begin_round() {}
  void end_round() {}
  void end_call() {}
  void push_vertex(Vertex v) {
    if (len >= xs.size()) throw std::runtime_error("route pattern too long");
    xs[len++] = v ^ base;
  }
  [[nodiscard]] Vertex last_vertex() const { return xs[len - 1] ^ base; }
  [[nodiscard]] std::span<const Vertex> span() const { return {xs.data(), len}; }
};

}  // namespace detail

/// Emits the unified Broadcast_k dimension sweep from `source` as
/// symbolic rounds of call groups into any SymbolicRoundSink.  Honors
/// the sink's optional aborted() hook.  Throws std::invalid_argument
/// for an out-of-range source, and std::runtime_error when the frontier
/// exceeds `max_frontier_subcubes` or a subcube would split into more
/// than 2^24 pieces (pathological custom constructions; the paper's
/// specs stay far below both).
template <SymbolicRoundSink Sink>
SymbolicProducerStats emit_broadcast_rounds_symbolic(
    const SparseHypercubeSpec& spec, Vertex source, Sink& sink,
    std::uint64_t max_frontier_subcubes = std::uint64_t{1} << 26) {
  const int n = spec.n();
  if (source >= spec.num_vertices()) {
    throw std::invalid_argument("source out of range");
  }
  SymbolicProducerStats stats;
  SubcubeFrontier frontier(n);
  frontier.insert(source, 0);
  stats.peak_frontier_subcubes = 1;

  // Reused snapshot buffer: receivers are inserted into `frontier`
  // while its entries are iterated, so each round walks a stable copy —
  // kept across rounds because the designed n = 63 cut peaks at ~11 M
  // entries and a fresh 270 MB vector per round is pure churn.
  std::vector<WeightedSubcube> entries;
  for (Dim i = n; i >= 1; --i) {
    if constexpr (requires(const Sink& s) {
                    { s.aborted() } -> std::convertible_to<bool>;
                  }) {
      if (sink.aborted()) break;
    }
    const int t = spec.level_of_dim(i);
    const Vertex low = t < 0 ? 0 : mask_low(spec.cuts()[static_cast<std::size_t>(t)]);

    sink.begin_round();
    {
      // Covers emission plus the sink's streamed per-group checks (the
      // sink IS the validator's end_call_group); the validator's own
      // end_round phases land outside this scope.
      SHC_TRACE_SCOPE("produce_round");
      entries.clear();
      entries.reserve(static_cast<std::size_t>(frontier.num_subcubes()));
      frontier.for_each([&](Vertex p, Vertex m, std::uint64_t mult) {
        entries.push_back({p, m, mult});
      });
      for (const WeightedSubcube& e : entries) {
        if (e.mult != 1) {
          throw std::runtime_error("producer frontier lost disjointness");
        }
        const Vertex split = e.mask & low;
        const Vertex rest = e.mask & ~split;
        if (weight(split) > 24) {
          throw std::runtime_error("subcube split blow-up (2^" +
                                   std::to_string(weight(split)) + " pieces)");
        }
        // Enumerate the pinned assignments of the route-relevant free
        // bits.
        Vertex a = 0;
        for (;;) {
          const Vertex u = e.prefix | a;
          detail::XorPathSink path;
          path.base = u;
          route_flip_append(spec, u, i, path);

          CallGroup g;
          g.prefix = u;
          g.free_mask = rest;
          std::uint64_t count = 0;
          if (!checked_shift_u64(static_cast<unsigned>(weight(rest)), count)) {
            throw std::runtime_error("group count overflow");
          }
          g.count = count;
          sink.end_call_group(g, path.span());
          ++stats.groups_emitted;
          if (split != 0 && a != 0) ++stats.split_groups;

          frontier.insert(u ^ path.span().back(), rest);

          if (a == split) break;
          a = (a - split) & split;
        }
      }
    }
    sink.end_round();

    stats.peak_frontier_subcubes =
        std::max(stats.peak_frontier_subcubes, frontier.num_subcubes());
    if (frontier.num_subcubes() > max_frontier_subcubes) {
      throw std::runtime_error(
          "symbolic frontier exceeded the subcube cap (" +
          std::to_string(frontier.num_subcubes()) + " subcubes)");
    }
  }
  stats.final_frontier_subcubes = frontier.num_subcubes();
  return stats;
}

/// Materializes the whole symbolic schedule (pattern tables
/// deduplicated per round).  Memory is proportional to the group count;
/// admits n <= 63.
[[nodiscard]] SymbolicSchedule make_symbolic_broadcast_schedule(
    const SparseHypercubeSpec& spec, Vertex source);

/// Outcome of a symbolic production + validation run.
struct SymbolicCertification {
  ValidationReport report;      ///< same shape as the other validators'
  SymbolicRunStats checks;      ///< validator-side group/expansion stats
  SymbolicProducerStats producer;
};

/// The spec the recorded symbolic showcases (bench rows, sweep rows)
/// certify at dimension n — one definition so BENCH_schedule.json and
/// BENCH_sweep.jsonl always measure the same graphs.  Certification
/// cost scales with the subcube frontier (roughly the product over
/// label classes of |S_j| + 1): up to n = 48 the canonical designed
/// cuts are used; beyond, the showcase pins construct_base(n, 6)
/// (lambda = 4) so BM_SymbolicCertify/63 stays the cheap
/// representation-limit anchor of the trajectory.  The designed
/// construct(63, 10) spec itself — certifiable since the occupancy
/// ledger — has its own gated row, BM_SymbolicCertifyDesigned/63.
[[nodiscard]] SparseHypercubeSpec symbolic_showcase_spec(int n, int k);

/// Runs Broadcast_k from `source` through the fully symbolic pipeline:
/// emit_broadcast_rounds_symbolic producing into a
/// SymbolicBroadcastValidator over the implicit SpecView oracle.  No
/// concrete call ever exists outside the seeded sample replays; time and
/// memory are polynomial in n for the paper's constructions.  Admits
/// n <= 63.
[[nodiscard]] SymbolicCertification certify_broadcast_symbolic(
    const SparseHypercubeSpec& spec, Vertex source, const ValidationOptions& opt,
    const SymbolicCheckOptions& sopt = {});

}  // namespace shc
