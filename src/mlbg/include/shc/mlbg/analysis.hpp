// Structural analysis of sparse hypercubes and their schedules:
// point-to-point routing (the paper's footnote-1 diameter claim made
// executable), per-dimension edge profiles, and broadcast-tree shape
// statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {

/// Dimension-ordered greedy route from u to v: fix differing dimensions
/// from the highest down, each via route_flip (direct edge or the <= k
/// Remark-1 detour).  The walk's length is at most k per initially
/// differing dimension — at most k*n overall, which witnesses footnote 1:
/// a k-mlbg of order 2^n has diameter <= k*n.  Lower dimensions disturbed
/// by detours are themselves fixed later in the sweep, so the walk always
/// terminates at v.  Works at any n <= 63 (no materialization).
[[nodiscard]] std::vector<Vertex> greedy_route(const SparseHypercubeSpec& spec,
                                               Vertex u, Vertex v);

/// Routing quality of `spec` over sampled vertex pairs.
struct RoutingStats {
  std::uint64_t pairs = 0;
  std::uint64_t total_hops = 0;
  int max_hops = 0;
  double mean_stretch = 0.0;  ///< hops / Hamming distance, averaged
  double max_stretch = 0.0;
  int footnote_bound = 0;     ///< k * n
  bool within_bound = false;  ///< max_hops <= k * n
};

/// Routes `pairs` pseudo-random pairs through greedy_route and
/// aggregates.  Deterministic for a given seed.
[[nodiscard]] RoutingStats sample_routing(const SparseHypercubeSpec& spec,
                                          std::uint64_t pairs, std::uint64_t seed);

/// Per-dimension edge counts of the spec, in closed form.  Index i-1
/// holds the number of dimension-i edges: 2^(n-1) for core dimensions,
/// |class(owner)| * 2^(n - window - 1) ... computed from label-class
/// sizes for Rule-2 dimensions.  Summing the vector gives num_edges().
[[nodiscard]] std::vector<std::uint64_t> dimension_edge_profile(
    const SparseHypercubeSpec& spec);

/// Shape of the broadcast tree induced by a schedule (parent = caller).
struct BroadcastTreeStats {
  std::uint64_t vertices = 0;
  int height = 0;                         ///< max rounds-depth of a leaf
  std::size_t max_fanout = 0;             ///< most calls placed by one vertex
  std::vector<std::size_t> fanout_histogram;  ///< [f] = #vertices placing f calls
  std::vector<std::size_t> informed_per_round;  ///< cumulative after each round
};

/// Extracts tree statistics from a broadcast schedule.  The fanout of a
/// vertex equals the number of rounds it spends calling — in a
/// minimum-time schedule the source has fanout n, the last-informed
/// vertices fanout 0.
[[nodiscard]] BroadcastTreeStats analyze_broadcast_tree(const FlatSchedule& schedule);
[[nodiscard]] BroadcastTreeStats analyze_broadcast_tree(const BroadcastSchedule& schedule);

}  // namespace shc
