// Parameter selection for the construction: the paper's closed-form
// choices (Theorem 5's m*, Theorem 7's n_i*) and an exact dynamic
// program that minimizes the realized maximum degree — used both to
// build the best graphs and as the ablation baseline showing how much
// the closed forms give away.
#pragma once

#include <vector>

#include "shc/mlbg/spec.hpp"

namespace shc {

/// Theorem 5's core size for k = 2: m* = ceil(sqrt(2n + 4)) - 2,
/// clamped into [1, n-1].  Pre: n >= 2.
[[nodiscard]] int theorem5_core(int n) noexcept;

/// Theorem 7's cut points for k >= 3: n_i* = ceil((n-k)^(i/k)) + i - 1
/// for i = 1 .. k-1, repaired to be strictly increasing inside [1, n-1]
/// (the paper assumes n large enough that no repair is needed).
/// Pre: n > k >= 2.  For k = 2 returns {theorem5_core(n)}.
[[nodiscard]] std::vector<int> theorem7_cuts(int n, int k);

/// Realized maximum degree of Construct(n, cuts) with Lemma-2 labelings,
/// in closed form: n_1 + sum_t ceil((n_{t+1} - n_t) / lambda(n_t - n_{t-1})).
[[nodiscard]] int realized_max_degree(int n, const std::vector<int>& cuts) noexcept;

/// Exact minimization of realized_max_degree over all strictly
/// increasing cut vectors of length k-1 by dynamic programming,
/// O(k n^3).  Pre: n > k >= 2, n <= 63.
[[nodiscard]] std::vector<int> optimal_cuts(int n, int k);

/// Convenience: the best of theorem7_cuts and optimal_cuts (they agree
/// asymptotically; optimal_cuts is never worse).
[[nodiscard]] SparseHypercubeSpec design_sparse_hypercube(int n, int k);

/// Property-2-aware designer: since G_j subset G_{j+1}, any j-mlbg with
/// j <= k_max serves as a k_max-mlbg; this returns the minimum-degree
/// construction over all 2 <= j <= k_max.  At small n a lower j often
/// wins (fewer levels, less rounding waste) even though the asymptotic
/// degree shrinks with k.  Pre: n > 2, 2 <= k_max.
[[nodiscard]] SparseHypercubeSpec design_best_sparse_hypercube(int n, int k_max);

}  // namespace shc
