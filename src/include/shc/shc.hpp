// Umbrella header for the sparse-hypercube library.
//
// Quick tour:
//   SparseHypercubeSpec::construct_base(n, m)  — the paper's k = 2 graph
//   design_sparse_hypercube(n, k)              — best cuts for general k
//   make_broadcast_schedule(spec, source)      — Broadcast_k scheme
//   validate_minimum_time_k_line(view, s, k)   — mechanical model check
//   certify_broadcast_streaming(spec, 0, opt)  — n <= 32, one round in RAM
//   certify_broadcast_symbolic(spec, 0, opt)   — n <= 63, subcube groups
#pragma once

#include "shc/bits/bitstring.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/graph/graph.hpp"
#include "shc/graph/io.hpp"
#include "shc/coding/gf2.hpp"
#include "shc/coding/hamming.hpp"
#include "shc/gossip/gossip.hpp"
#include "shc/gossip/symbolic_gossip.hpp"
#include "shc/labeling/domatic.hpp"
#include "shc/labeling/labeling.hpp"
#include "shc/mlbg/analysis.hpp"
#include "shc/mlbg/bounds.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/knowledge_classes.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/occupancy_ledger.hpp"
#include "shc/sim/round_sink.hpp"
#include "shc/sim/schedule.hpp"
#include "shc/sim/streaming_validator.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/symbolic_schedule.hpp"
#include "shc/sim/symbolic_validator.hpp"
#include "shc/sim/validator.hpp"
#include "shc/sim/worker_pool.hpp"
#include "shc/baseline/hypercube_broadcast.hpp"
#include "shc/baseline/path_star.hpp"
#include "shc/baseline/tree_broadcast.hpp"
