// Umbrella header for the sparse-hypercube library.
//
// The recommended public surface is the src/api facade: one request,
// one result, one JSON row — examples/quickstart.cpp, shc_sweep, and
// the shc_serve server are all thin clients of it.
//
//   CertifyRequest req;                      // shc/api/certify.hpp
//   req.workload = Workload::kBroadcastSymbolic;
//   req.n = 48;                              // cuts empty -> designed spec
//   CertifyResult res = certify(req);        // report + stats + timing
//   std::cout << to_json_row(res) << "\n";   // the shc_sweep row schema
//
// and for a long-lived cached service (newline-delimited JSON,
// certificate cache, admission control — examples/shc_serve.cpp is the
// stdin/socket transport around it):
//
//   ServeEngine engine({.threads = 4});      // shc/api/serve.hpp
//   engine.handle_line("{\"workload\":\"gossip-symbolic\",\"n\":24}");
//
// Choosing an engine (Workload values; details in README.md):
//
//   | workload / entry point              | limit  | character           |
//   |-------------------------------------|--------|---------------------|
//   | make_broadcast_schedule             | n <= 28| you need the        |
//   |   (materialized, engine internals)  |        | schedule itself     |
//   | kBroadcastStreaming                 | n <= 32| exact per-call      |
//   |   certify_broadcast_streaming       |        | checks, memory =    |
//   |                                     |        | largest round       |
//   | kBroadcastSymbolic                  | n <= 63| subcube groups,     |
//   |   certify_broadcast_symbolic        |        | polynomial cost,    |
//   |                                     |        | paper's exact model |
//   | kGossipSymbolic                     | n <= 63| gather-broadcast    |
//   |   certify_gossip_symbolic           |        | all-to-all exchange |
//   | kExchangeGossip                     | n <= 59| dimension-exchange  |
//   |   certify_exchange_gossip_symbolic  |        | on the full Q_n     |
//
//   Gossip validators: validate_gossip (exact, N <= 2^13, N^2 knowledge
//   bits) / validate_gossip_sampled (N <= 2^32, seeded token columns) /
//   certify_gossip_symbolic (N <= 2^63, algebraic certification).
//
// Shared engine knobs (threads, borrowed WorkerPool, collision mode,
// ledger/sweep budgets, sampling) live in CommonCheckOptions
// (shc/sim/check_options.hpp), inherited by both SymbolicCheckOptions
// and SymbolicGossipOptions.  Every engine's report is bit-for-bit
// identical across thread counts, collision modes, and borrowed vs.
// owned pools.
//
// Lower-level tour, for callers that need engine internals directly:
//   SparseHypercubeSpec::construct_base(n, m)  — the paper's k = 2 graph
//   design_sparse_hypercube(n, k)              — best cuts for general k
//   make_broadcast_schedule(spec, source)      — Broadcast_k scheme
//   validate_minimum_time_k_line(view, s, k)   — mechanical model check
//   analyze_congestion(schedule)               — edge-load statistics
#pragma once

#include "shc/api/certify.hpp"
#include "shc/api/serve.hpp"
#include "shc/bits/bitstring.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/graph/graph.hpp"
#include "shc/graph/io.hpp"
#include "shc/coding/gf2.hpp"
#include "shc/coding/hamming.hpp"
#include "shc/gossip/gossip.hpp"
#include "shc/gossip/symbolic_gossip.hpp"
#include "shc/labeling/domatic.hpp"
#include "shc/labeling/labeling.hpp"
#include "shc/mlbg/analysis.hpp"
#include "shc/mlbg/bounds.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/sim/check_options.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/knowledge_classes.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/occupancy_ledger.hpp"
#include "shc/sim/round_sink.hpp"
#include "shc/sim/schedule.hpp"
#include "shc/sim/streaming_validator.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/symbolic_schedule.hpp"
#include "shc/sim/symbolic_validator.hpp"
#include "shc/sim/validator.hpp"
#include "shc/sim/worker_pool.hpp"
#include "shc/baseline/hypercube_broadcast.hpp"
#include "shc/baseline/path_star.hpp"
#include "shc/baseline/tree_broadcast.hpp"
